package iotrace_test

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"iotrace"
)

func TestGridScenarios(t *testing.T) {
	g := iotrace.Grid{CacheMB: []int64{4, 8}, BlockKB: []int64{4, 8}}
	scens := g.Scenarios()
	if len(scens) != 4 {
		t.Fatalf("%d scenarios, want 4", len(scens))
	}
	// Cache varies fastest within each block size.
	wantNames := []string{
		"cache=4MB block=4KB", "cache=8MB block=4KB",
		"cache=4MB block=8KB", "cache=8MB block=8KB",
	}
	for i, sc := range scens {
		if sc.Name != wantNames[i] {
			t.Errorf("scenario %d named %q, want %q", i, sc.Name, wantNames[i])
		}
		if sc.SeedOffset != 0 {
			t.Errorf("scenario %d seed offset %d without SeedStep", i, sc.SeedOffset)
		}
	}
	if scens[0].Config.CacheBytes != 4<<20 || scens[1].Config.CacheBytes != 8<<20 {
		t.Error("cache axis not applied")
	}
	if scens[2].Config.BlockBytes != 8<<10 {
		t.Error("block axis not applied")
	}

	// Unset axes keep the base configuration; empty grid is the base.
	base := iotrace.SSDConfig()
	only := iotrace.Grid{Base: &base}.Scenarios()
	if len(only) != 1 || only[0].Name != "base" || only[0].Config.Tier != iotrace.SSD {
		t.Errorf("empty grid = %+v", only)
	}

	// All five axes multiply, and SeedStep numbers scenarios.
	full := iotrace.Grid{
		CacheMB:     []int64{4, 8},
		BlockKB:     []int64{4},
		Tiers:       []iotrace.Tier{iotrace.MainMemory, iotrace.SSD},
		ReadAhead:   []bool{true, false},
		WriteBehind: []bool{true},
		SeedStep:    3,
	}.Scenarios()
	if len(full) != 8 {
		t.Fatalf("%d scenarios, want 8", len(full))
	}
	if full[7].SeedOffset != 21 {
		t.Errorf("last seed offset %d, want 21", full[7].SeedOffset)
	}
	if !strings.Contains(full[0].Name, "tier=main-memory") || !strings.Contains(full[0].Name, "wb=on") {
		t.Errorf("name %q missing axes", full[0].Name)
	}
}

// sweepRender flattens a whole sweep into one byte string for identity
// comparisons, per-volume breakdowns included.
func sweepRender(t *testing.T, results []iotrace.SweepResult) string {
	t.Helper()
	var b strings.Builder
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.Scenario.Name, r.Err)
		}
		b.WriteString(r.Scenario.Name)
		b.WriteString(" -> ")
		b.WriteString(renderResult(r.Result))
		fmt.Fprintf(&b, "|vols=%+v|imb=%.9f|queues=%+v|flush=%+v|avail=%.9f deg=%.3f fev=%d",
			r.Result.Volumes, r.Result.VolumeImbalance(), r.Result.VolumeQueues, r.Result.Flush,
			r.Result.Availability, r.Result.DegradedSec, r.Result.FaultEvents)
		b.WriteString("\n")
	}
	return b.String()
}

func TestGridVolumesAxis(t *testing.T) {
	g := iotrace.Grid{CacheMB: []int64{4, 8}, Volumes: []int{1, 4}}
	scens := g.Scenarios()
	if len(scens) != 4 {
		t.Fatalf("%d scenarios, want 4", len(scens))
	}
	// The volume axis varies slowest and labels its scenarios.
	wantNames := []string{
		"cache=4MB vols=1", "cache=8MB vols=1",
		"cache=4MB vols=4", "cache=8MB vols=4",
	}
	for i, sc := range scens {
		if sc.Name != wantNames[i] {
			t.Errorf("scenario %d named %q, want %q", i, sc.Name, wantNames[i])
		}
	}
	if scens[1].Config.NumVolumes != 1 || scens[2].Config.NumVolumes != 4 {
		t.Error("volume axis not applied")
	}
}

func TestGridSplitSpindlesPerScenario(t *testing.T) {
	// Grid.SplitSpindles divides the base volume by each cell's OWN
	// volume count, after the Volumes axis — the composition a Base
	// config can't express (its split would use the base count).
	g := iotrace.Grid{Volumes: []int{1, 2, 5}, SplitSpindles: true}
	scens := g.Scenarios()
	wantStripe := []int{10, 5, 2} // DefaultVolume has 10 spindles
	for i, sc := range scens {
		if sc.Config.Volume.Stripe != wantStripe[i] {
			t.Errorf("%s: stripe %d, want %d", sc.Name, sc.Config.Volume.Stripe, wantStripe[i])
		}
	}
	// Without the knob, every cell keeps the full base volume.
	for _, sc := range (iotrace.Grid{Volumes: []int{1, 2, 5}}).Scenarios() {
		if sc.Config.Volume.Stripe != 10 {
			t.Errorf("%s: stripe %d without SplitSpindles", sc.Name, sc.Config.Volume.Stripe)
		}
	}
}

// TestShardedSweepDeterministicAcrossWorkerCounts extends the worker-
// count identity to multi-volume scenarios: a sweep over the volume-count
// axis renders byte-identically whatever the pool width.
func TestShardedSweepDeterministicAcrossWorkerCounts(t *testing.T) {
	w, err := iotrace.New(iotrace.App("ccm", 1))
	if err != nil {
		t.Fatal(err)
	}
	base := iotrace.Configure(iotrace.DefaultConfig(), iotrace.Striping(64<<10))
	grid := iotrace.Grid{
		Base:    &base,
		CacheMB: []int64{4, 32},
		Volumes: []int{1, 2, 4, 8},
	}
	scens := grid.Scenarios()
	ctx := context.Background()
	serial, err := w.Sweep(ctx, scens, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := w.Sweep(ctx, scens, 4)
	if err != nil {
		t.Fatal(err)
	}
	a, b := sweepRender(t, serial), sweepRender(t, parallel)
	if a != b {
		t.Errorf("workers=4 diverged from workers=1:\n--- serial ---\n%s--- parallel ---\n%s", a, b)
	}
	// Each scenario carries the volume breakdown it was configured for.
	for i, r := range serial {
		if len(r.Result.Volumes) != scens[i].Config.NumVolumes {
			t.Errorf("%s: %d volume entries", r.Scenario.Name, len(r.Result.Volumes))
		}
	}
}

func TestGridSchedulersAxis(t *testing.T) {
	grid := iotrace.Grid{
		CacheMB:    []int64{4, 32},
		Schedulers: []iotrace.SchedulerPolicy{iotrace.SchedFCFS, iotrace.SchedSSTF, iotrace.SchedSCAN},
	}
	scens := grid.Scenarios()
	if len(scens) != 6 {
		t.Fatalf("%d scenarios, want 6", len(scens))
	}
	// Scheduler is the slowest-varying axis; every cell enables
	// queueing under its policy.
	want := []struct {
		name string
		pol  iotrace.SchedulerPolicy
	}{
		{"cache=4MB sched=fcfs", iotrace.SchedFCFS},
		{"cache=32MB sched=fcfs", iotrace.SchedFCFS},
		{"cache=4MB sched=sstf", iotrace.SchedSSTF},
		{"cache=32MB sched=sstf", iotrace.SchedSSTF},
		{"cache=4MB sched=scan", iotrace.SchedSCAN},
		{"cache=32MB sched=scan", iotrace.SchedSCAN},
	}
	for i, sc := range scens {
		if sc.Name != want[i].name {
			t.Errorf("scenario %d named %q, want %q", i, sc.Name, want[i].name)
		}
		if !sc.Config.DiskQueueing || sc.Config.Scheduler != want[i].pol {
			t.Errorf("%s: queueing=%v scheduler=%v", sc.Name, sc.Config.DiskQueueing, sc.Config.Scheduler)
		}
	}
}

// TestSchedulerSweepDeterministicAcrossWorkerCounts is the
// worker-count-independence property with the Schedulers axis
// populated: per-scenario results — volume breakdowns, queue depths,
// and flush overlap included — are byte-identical however the pool is
// sized.
func TestSchedulerSweepDeterministicAcrossWorkerCounts(t *testing.T) {
	w, err := iotrace.New(iotrace.App("ccm", 1))
	if err != nil {
		t.Fatal(err)
	}
	grid := iotrace.Grid{
		CacheMB:    []int64{4, 32},
		Volumes:    []int{1, 2},
		Schedulers: []iotrace.SchedulerPolicy{iotrace.SchedFCFS, iotrace.SchedSSTF, iotrace.SchedSCAN},
	}
	scens := grid.Scenarios()
	ctx := context.Background()
	serial, err := w.Sweep(ctx, scens, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := w.Sweep(ctx, scens, 6)
	if err != nil {
		t.Fatal(err)
	}
	a, b := sweepRender(t, serial), sweepRender(t, parallel)
	if a != b {
		t.Errorf("workers=6 diverged from workers=1:\n--- serial ---\n%s--- parallel ---\n%s", a, b)
	}
	for i, r := range serial {
		if len(r.Result.VolumeQueues) != scens[i].Config.NumVolumes {
			t.Errorf("%s: %d VolumeQueues entries, want %d",
				r.Scenario.Name, len(r.Result.VolumeQueues), scens[i].Config.NumVolumes)
		}
	}
}

func TestGridFaultsAxis(t *testing.T) {
	plan, err := iotrace.ParseFaultPlan("vol0:down@2s+20s")
	if err != nil {
		t.Fatal(err)
	}
	grid := iotrace.Grid{
		CacheMB: []int64{4, 32},
		Faults:  []*iotrace.FaultPlan{nil, plan},
	}
	scens := grid.Scenarios()
	if len(scens) != 4 {
		t.Fatalf("%d scenarios, want 4", len(scens))
	}
	// The fault axis varies slowest: all faults-off cells come before any
	// faulted cell, and nil labels itself "faults=off".
	want := []struct {
		name string
		plan *iotrace.FaultPlan
	}{
		{"cache=4MB faults=off", nil},
		{"cache=32MB faults=off", nil},
		{"cache=4MB faults=vol0:down@2s+20s", plan},
		{"cache=32MB faults=vol0:down@2s+20s", plan},
	}
	for i, sc := range scens {
		if sc.Name != want[i].name {
			t.Errorf("scenario %d named %q, want %q", i, sc.Name, want[i].name)
		}
		if sc.Config.Faults != want[i].plan {
			t.Errorf("%s: Faults = %v, want %v", sc.Name, sc.Config.Faults, want[i].plan)
		}
	}
}

// TestFaultSweepDeterministicAcrossWorkerCounts is the tentpole's
// reproducibility acceptance at the sweep layer: the same seed and the
// same fault plan render byte-identically whatever the worker-pool
// width, resilience counters included.
func TestFaultSweepDeterministicAcrossWorkerCounts(t *testing.T) {
	w, err := iotrace.New(iotrace.App("ccm", 1))
	if err != nil {
		t.Fatal(err)
	}
	outage, err := iotrace.ParseFaultPlan("vol0:down@2s+20s,backbone:down@60s+10s")
	if err != nil {
		t.Fatal(err)
	}
	base := iotrace.DefaultConfig()
	base.WriteBehind = false // route writes at the faulted volumes
	grid := iotrace.Grid{
		Base:    &base,
		CacheMB: []int64{4, 32},
		Volumes: []int{1, 2},
		Faults:  []*iotrace.FaultPlan{nil, outage},
	}
	scens := grid.Scenarios()
	ctx := context.Background()
	serial, err := w.Sweep(ctx, scens, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := w.Sweep(ctx, scens, 4)
	if err != nil {
		t.Fatal(err)
	}
	a, b := sweepRender(t, serial), sweepRender(t, parallel)
	if a != b {
		t.Errorf("workers=4 diverged from workers=1:\n--- serial ---\n%s--- parallel ---\n%s", a, b)
	}
	// Faults-off cells report full availability; faulted cells account
	// for their outage windows.
	for i, r := range serial {
		if scens[i].Config.Faults == nil {
			if r.Result.Availability != 1 || r.Result.FaultEvents != 0 {
				t.Errorf("%s: avail %.3f, %d fault events without a plan",
					r.Scenario.Name, r.Result.Availability, r.Result.FaultEvents)
			}
		} else if r.Result.FaultEvents == 0 || r.Result.DegradedSec <= 0 {
			t.Errorf("%s: %d fault events, degraded %.1f s with a plan",
				r.Scenario.Name, r.Result.FaultEvents, r.Result.DegradedSec)
		}
	}
}

func TestSweepDeterministicAcrossWorkerCounts(t *testing.T) {
	w, err := iotrace.New(iotrace.App("ccm", 1))
	if err != nil {
		t.Fatal(err)
	}
	// The acceptance grid: >= 8 configurations.
	grid := iotrace.Grid{
		CacheMB:     []int64{4, 8, 16, 32},
		WriteBehind: []bool{true, false},
	}
	scens := grid.Scenarios()
	if len(scens) < 8 {
		t.Fatalf("grid expanded to %d scenarios, want >= 8", len(scens))
	}
	ctx := context.Background()
	serial, err := w.Sweep(ctx, scens, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := w.Sweep(ctx, scens, 4)
	if err != nil {
		t.Fatal(err)
	}
	a, b := sweepRender(t, serial), sweepRender(t, parallel)
	if a != b {
		t.Errorf("workers=4 diverged from workers=1:\n--- serial ---\n%s--- parallel ---\n%s", a, b)
	}
	// And the sweep is wired through: more cache can't make idle worse
	// for the write-behind half of the grid.
	if serial[0].Result.IdleSeconds() < serial[3].Result.IdleSeconds() {
		t.Errorf("idle grew with cache size: %v vs %v", serial[0], serial[3])
	}
}

func TestSweepSeedOffsetsVaryTraces(t *testing.T) {
	w, err := iotrace.New(iotrace.App("upw", 1))
	if err != nil {
		t.Fatal(err)
	}
	cfg := iotrace.DefaultConfig()
	scens := []iotrace.Scenario{
		{Name: "replica-a", Config: cfg},
		{Name: "replica-b", Config: cfg},
		{Name: "reseeded", Config: cfg, SeedOffset: 1},
	}
	results, err := w.Sweep(context.Background(), scens, 2)
	if err != nil {
		t.Fatal(err)
	}
	a, b, c := results[0], results[1], results[2]
	if renderResult(a.Result) != renderResult(b.Result) {
		t.Error("identical scenarios produced different results")
	}
	if renderResult(a.Result) == renderResult(c.Result) {
		t.Error("seed offset did not change the generated trace")
	}
	// Reseeding is itself deterministic.
	again, err := w.Sweep(context.Background(), scens, 3)
	if err != nil {
		t.Fatal(err)
	}
	if renderResult(c.Result) != renderResult(again[2].Result) {
		t.Error("seed-offset scenario not reproducible")
	}
}

func TestSweepScenarioErrorIsPerScenario(t *testing.T) {
	w, err := iotrace.New(iotrace.App("upw", 1))
	if err != nil {
		t.Fatal(err)
	}
	bad := iotrace.DefaultConfig()
	bad.BlockBytes = 0 // fails validation
	scens := []iotrace.Scenario{
		{Name: "bad", Config: bad},
		{Name: "good", Config: iotrace.DefaultConfig()},
	}
	results, err := w.Sweep(context.Background(), scens, 2)
	if err != nil {
		t.Fatalf("sweep-level error %v for a scenario-level failure", err)
	}
	if results[0].Err == nil {
		t.Error("invalid config did not fail its scenario")
	}
	if results[1].Err != nil || results[1].Result == nil {
		t.Errorf("healthy scenario dragged down: %+v", results[1])
	}
	if !strings.Contains(results[0].String(), "error") || !strings.Contains(results[1].String(), "good") {
		t.Errorf("renderings: %q / %q", results[0].String(), results[1].String())
	}
}

func TestSweepCancelled(t *testing.T) {
	w, err := iotrace.New(iotrace.App("ccm", 1))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	scens := iotrace.Grid{CacheMB: []int64{4, 8, 16, 32}}.Scenarios()
	results, err := w.Sweep(ctx, scens, 2)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(results) != len(scens) {
		t.Fatalf("%d results for %d scenarios", len(results), len(scens))
	}
	for i, r := range results {
		if r.Err == nil && r.Result == nil {
			t.Errorf("scenario %d has neither result nor error", i)
		}
	}
}

func TestSweepEmptyAndOverprovisioned(t *testing.T) {
	w, err := iotrace.New(iotrace.App("upw", 1))
	if err != nil {
		t.Fatal(err)
	}
	none, err := w.Sweep(context.Background(), nil, 4)
	if err != nil || len(none) != 0 {
		t.Fatalf("empty sweep: %v, %d results", err, len(none))
	}
	// More workers than scenarios must not deadlock or misorder.
	one, err := w.Sweep(context.Background(), []iotrace.Scenario{{Name: "solo", Config: iotrace.DefaultConfig()}}, 16)
	if err != nil || len(one) != 1 || one[0].Err != nil {
		t.Fatalf("overprovisioned sweep: %v, %+v", err, one)
	}
}
