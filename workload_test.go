package iotrace_test

import (
	"bytes"
	"path/filepath"
	"testing"

	"iotrace"
)

func TestNewWorkloadAndCharacterize(t *testing.T) {
	w, err := iotrace.New(iotrace.App("ccm", 2))
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Procs) != 2 {
		t.Fatalf("%d procs", len(w.Procs))
	}
	if w.Procs[0].Name == w.Procs[1].Name {
		t.Error("copies share a name")
	}
	sts, err := w.Characterize()
	if err != nil {
		t.Fatal(err)
	}
	if len(sts) != 2 {
		t.Fatalf("%d stats", len(sts))
	}
	for _, s := range sts {
		if s.Records == 0 || s.MBps() <= 0 {
			t.Errorf("degenerate stats: %v", s)
		}
	}
	// Distinct seeds: statistics close but traces not identical.
	if len(w.Procs[0].Records) == len(w.Procs[1].Records) {
		same := true
		for i := range w.Procs[0].Records {
			a, b := w.Procs[0].Records[i], w.Procs[1].Records[i]
			if a.Start != b.Start {
				same = false
				break
			}
		}
		if same {
			t.Error("copies are identical traces")
		}
	}
}

func TestWorkloadErrors(t *testing.T) {
	if _, err := iotrace.New(iotrace.App("nosuch", 1)); err == nil {
		t.Error("unknown app accepted")
	}
	if _, err := iotrace.New(iotrace.App("ccm", 0)); err == nil {
		t.Error("zero copies accepted")
	}
	if _, err := iotrace.New(iotrace.FirstPID(0)); err == nil {
		t.Error("pid 0 accepted")
	}
	if _, err := iotrace.AppRecords("ccm", -1); err == nil {
		t.Error("negative instance accepted")
	}
	w := &iotrace.Workload{}
	if err := w.Add("ccm", 0); err == nil {
		t.Error("zero copies accepted by Add")
	}
	if len(w.Procs) != 0 {
		t.Error("failed Add mutated the workload")
	}
}

func TestWorkloadSimulate(t *testing.T) {
	w, err := iotrace.New(iotrace.App("ccm", 1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := w.Simulate(iotrace.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.WallSeconds() <= 0 || res.Utilization() <= 0 {
		t.Errorf("degenerate result: %v", res)
	}
	// ccm's CPU time is ~205 s; wall cannot be below that.
	if res.WallSeconds() < 200 {
		t.Errorf("wall %.1f s below ccm's CPU time", res.WallSeconds())
	}
}

func TestAppsList(t *testing.T) {
	names := iotrace.Apps()
	if len(names) != 7 {
		t.Fatalf("Apps() = %v", names)
	}
	for _, name := range names {
		desc, err := iotrace.AppDescription(name)
		if err != nil || desc == "" {
			t.Errorf("%s: no description (%v)", name, err)
		}
	}
	if _, err := iotrace.AppDescription("nosuch"); err == nil {
		t.Error("unknown app described")
	}
}

func TestSeedOptionDeterministicAndDistinct(t *testing.T) {
	base, err := iotrace.New(iotrace.App("upw", 1))
	if err != nil {
		t.Fatal(err)
	}
	seeded1, err := iotrace.New(iotrace.App("upw", 1), iotrace.Seed(7))
	if err != nil {
		t.Fatal(err)
	}
	// Option order must not matter.
	seeded2, err := iotrace.New(iotrace.Seed(7), iotrace.App("upw", 1))
	if err != nil {
		t.Fatal(err)
	}
	a, b, c := base.Procs[0].Records, seeded1.Procs[0].Records, seeded2.Procs[0].Records
	if &b[0] != &c[0] {
		t.Error("same options produced different (uncached) traces")
	}
	sameAsBase := len(a) == len(b)
	if sameAsBase {
		for i := range a {
			if a[i].Start != b[i].Start {
				sameAsBase = false
				break
			}
		}
	}
	if sameAsBase {
		t.Error("Seed(7) did not change the generated trace")
	}
}

func TestFirstPIDOption(t *testing.T) {
	w, err := iotrace.New(iotrace.App("upw", 1), iotrace.FirstPID(9))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range w.Procs[0].Records {
		if r.IsComment() {
			continue
		}
		if r.ProcessID != 9 {
			t.Fatalf("pid %d, want 9", r.ProcessID)
		}
		break
	}
}

func TestTraceOptionAndMixedWorkload(t *testing.T) {
	ext, err := iotrace.AppRecords("upw", 0)
	if err != nil {
		t.Fatal(err)
	}
	// The external trace carries pid 1, so the generated gcm (whose pid
	// counts up from its position) must come after it.
	w, err := iotrace.New(
		iotrace.Trace("external", ext),
		iotrace.App("gcm", 1),
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Procs) != 2 || w.Procs[0].Name != "external" {
		t.Fatalf("procs %+v", w.Procs)
	}
	res, err := w.Simulate(iotrace.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// gcm (1897 s CPU) dominates; both share one CPU.
	if res.WallSeconds() < 1897 {
		t.Errorf("wall %.1f s below gcm's CPU demand", res.WallSeconds())
	}
}

func TestZeroValueWorkloadExtends(t *testing.T) {
	w := &iotrace.Workload{}
	w.AddTrace("external", nil)
	if len(w.Procs) != 1 || w.Procs[0].Name != "external" {
		t.Error("AddTrace failed")
	}
	if err := w.Add("upw", 1); err != nil {
		t.Fatal(err)
	}
	if len(w.Procs) != 2 || w.Procs[1].Name != "upw" {
		t.Fatalf("procs %+v", w.Procs)
	}
}

func TestAppRecordsMemoized(t *testing.T) {
	a, err := iotrace.AppRecords("ccm", 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := iotrace.AppRecords("ccm", 0)
	if err != nil {
		t.Fatal(err)
	}
	if &a[0] != &b[0] {
		t.Error("generation cache did not memoize")
	}
	c, err := iotrace.AppRecords("ccm", 1)
	if err != nil {
		t.Fatal(err)
	}
	if &a[0] == &c[0] {
		t.Error("instances share one trace")
	}
	// The workload builder shares the same cache.
	w, err := iotrace.New(iotrace.App("ccm", 1))
	if err != nil {
		t.Fatal(err)
	}
	if &w.Procs[0].Records[0] != &a[0] {
		t.Error("New regenerated a cached trace")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	recs, err := iotrace.AppRecords("upw", 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, format := range []string{"ascii", "binary", "ascii-raw"} {
		var buf bytes.Buffer
		if err := iotrace.SaveTrace(&buf, format, recs); err != nil {
			t.Fatalf("%s: %v", format, err)
		}
		got, err := iotrace.LoadTrace(&buf, format)
		if err != nil {
			t.Fatalf("%s: %v", format, err)
		}
		if len(got) != len(recs) {
			t.Fatalf("%s: %d != %d records", format, len(got), len(recs))
		}
	}
	if err := iotrace.SaveTrace(&bytes.Buffer{}, "xml", recs); err == nil {
		t.Error("unknown format accepted")
	}
	if _, err := iotrace.LoadTrace(&bytes.Buffer{}, "xml"); err == nil {
		t.Error("unknown format accepted on load")
	}
}

func TestSaveLoadFile(t *testing.T) {
	recs, err := iotrace.AppRecords("upw", 0)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "upw.trace")
	if err := iotrace.SaveTraceFile(path, "ascii", recs); err != nil {
		t.Fatal(err)
	}
	got, err := iotrace.LoadTraceFile(path, "ascii")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("%d != %d records", len(got), len(recs))
	}
	if err := iotrace.SaveTraceFile("/nonexistent-dir/x", "ascii", nil); err == nil {
		t.Error("bad path accepted")
	}
	if _, err := iotrace.LoadTraceFile("/nonexistent-file", "ascii"); err == nil {
		t.Error("missing file accepted")
	}
}
