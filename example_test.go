package iotrace_test

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"iotrace"
)

// The quickstart from README.md, verbatim: build a workload from
// built-in paper applications, characterize it (§5), and simulate it
// against the §6 cache model. Everything is deterministic, so the
// output is pinned.
func Example_quickstart() {
	// Two copies of the paper's ccm climate model on one shared CPU.
	w, err := iotrace.New(iotrace.App("ccm", 2))
	if err != nil {
		log.Fatal(err)
	}

	// Characterize: the Table 1 statistics of §5.
	stats, err := w.Characterize()
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range stats {
		fmt.Printf("%s: %d requests, %.0f MB read, %.0f MB written\n",
			s.Name, s.Records, float64(s.ReadBytes)/1e6, float64(s.WriteBytes)/1e6)
	}

	// Simulate: replay both processes against a 32 MB block cache with
	// read-ahead and write-behind (the paper's default configuration).
	res, err := w.Simulate(iotrace.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wall %.1f s, CPU utilization %.1f%%, read hit ratio %.3f\n",
		res.WallSeconds(), 100*res.Utilization(), res.Cache.ReadHitRatio())
	// Output:
	// ccm(1): 53205 requests, 872 MB read, 817 MB written
	// ccm(2): 53205 requests, 872 MB read, 817 MB written
	// wall 423.6 s, CPU utilization 100.0%, read hit ratio 1.000
}

// Sweep a Figure 8-style grid — cache size crossed with volume count —
// on a pool of 4 workers. Results are independent of the worker count.
func ExampleWorkload_Sweep() {
	w, err := iotrace.New(iotrace.App("ccm", 1))
	if err != nil {
		log.Fatal(err)
	}
	grid := iotrace.Grid{
		CacheMB: []int64{4, 32},
		Volumes: []int{1, 4},
	}
	results, err := w.Sweep(context.Background(), grid.Scenarios(), 4)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range results {
		fmt.Printf("%-20s wall %.1f s, volume imbalance %.2f\n",
			r.Scenario.Name, r.Result.WallSeconds(), r.Result.VolumeImbalance())
	}
	// Output:
	// cache=4MB vols=1     wall 213.9 s, volume imbalance 1.00
	// cache=32MB vols=1    wall 211.8 s, volume imbalance 1.00
	// cache=4MB vols=4     wall 219.2 s, volume imbalance 1.24
	// cache=32MB vols=4    wall 211.9 s, volume imbalance 1.29
}

// A TraceSource decodes an on-disk trace exactly once, however many
// consumers replay it: here one characterization plus two simulations
// share a single decode-and-validate pass.
func ExampleSource() {
	dir, err := os.MkdirTemp("", "iotrace-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "ccm.trace")
	recs, err := iotrace.AppRecords("ccm", 0)
	if err != nil {
		log.Fatal(err)
	}
	if err := iotrace.SaveTraceFile(path, "ascii", recs); err != nil {
		log.Fatal(err)
	}

	src := iotrace.NewTraceSource(path, iotrace.FormatASCII)
	w, err := iotrace.New(iotrace.Source("ccm", src))
	if err != nil {
		log.Fatal(err)
	}
	if _, err := w.Characterize(); err != nil {
		log.Fatal(err)
	}
	for _, cacheMB := range []int64{4, 32} {
		cfg := iotrace.DefaultConfig()
		cfg.CacheBytes = cacheMB << 20
		if _, err := w.Simulate(cfg); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("3 consumers, %d decode\n", src.Decodes())
	// Output:
	// 3 consumers, 1 decode
}

// Shard the storage tier: 4 volumes, 64 KB striping. Result.Volumes
// breaks disk activity down per volume and VolumeImbalance summarizes
// how evenly the array carried it.
func ExampleConfigure() {
	w, err := iotrace.New(iotrace.App("ccm", 2))
	if err != nil {
		log.Fatal(err)
	}
	cfg := iotrace.Configure(iotrace.DefaultConfig(),
		iotrace.Volumes(4),
		iotrace.Striping(64<<10),
	)
	res, err := w.Simulate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d volumes, imbalance %.2f\n", len(res.Volumes), res.VolumeImbalance())
	for i, v := range res.Volumes {
		fmt.Printf("vol %d: %d writes, %.0f MB\n", i, v.Writes, float64(v.WriteBytes)/1e6)
	}
	// Output:
	// 4 volumes, imbalance 1.07
	// vol 0: 10476 writes, 419 MB
	// vol 1: 9766 writes, 395 MB
	// vol 2: 10165 writes, 423 MB
	// vol 3: 10071 writes, 421 MB
}
