package iotrace_test

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"iotrace"
)

// The quickstart from README.md, verbatim: build a workload from
// built-in paper applications, characterize it (§5), and simulate it
// against the §6 cache model. Everything is deterministic, so the
// output is pinned.
func Example_quickstart() {
	// Two copies of the paper's ccm climate model on one shared CPU.
	w, err := iotrace.New(iotrace.App("ccm", 2))
	if err != nil {
		log.Fatal(err)
	}

	// Characterize: the Table 1 statistics of §5.
	stats, err := w.Characterize()
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range stats {
		fmt.Printf("%s: %d requests, %.0f MB read, %.0f MB written\n",
			s.Name, s.Records, float64(s.ReadBytes)/1e6, float64(s.WriteBytes)/1e6)
	}

	// Simulate: replay both processes against a 32 MB block cache with
	// read-ahead and write-behind (the paper's default configuration).
	res, err := w.Simulate(iotrace.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wall %.1f s, CPU utilization %.1f%%, read hit ratio %.3f\n",
		res.WallSeconds(), 100*res.Utilization(), res.Cache.ReadHitRatio())
	// Output:
	// ccm(1): 53205 requests, 872 MB read, 817 MB written
	// ccm(2): 53205 requests, 872 MB read, 817 MB written
	// wall 423.6 s, CPU utilization 100.0%, read hit ratio 1.000
}

// Sweep a Figure 8-style grid — cache size crossed with volume count —
// on a pool of 4 workers. Results are independent of the worker count.
func ExampleWorkload_Sweep() {
	w, err := iotrace.New(iotrace.App("ccm", 1))
	if err != nil {
		log.Fatal(err)
	}
	grid := iotrace.Grid{
		CacheMB: []int64{4, 32},
		Volumes: []int{1, 4},
	}
	results, err := w.Sweep(context.Background(), grid.Scenarios(), 4)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range results {
		fmt.Printf("%-20s wall %.1f s, volume imbalance %.2f\n",
			r.Scenario.Name, r.Result.WallSeconds(), r.Result.VolumeImbalance())
	}
	// Output:
	// cache=4MB vols=1     wall 213.9 s, volume imbalance 1.00
	// cache=32MB vols=1    wall 211.8 s, volume imbalance 1.00
	// cache=4MB vols=4     wall 219.2 s, volume imbalance 1.22
	// cache=32MB vols=4    wall 211.9 s, volume imbalance 1.27
}

// A TraceSource decodes an on-disk trace exactly once, however many
// consumers replay it: here one characterization plus two simulations
// share a single decode-and-validate pass.
func ExampleSource() {
	dir, err := os.MkdirTemp("", "iotrace-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "ccm.trace")
	recs, err := iotrace.AppRecords("ccm", 0)
	if err != nil {
		log.Fatal(err)
	}
	if err := iotrace.SaveTraceFile(path, "ascii", recs); err != nil {
		log.Fatal(err)
	}

	src := iotrace.NewTraceSource(path, iotrace.WithFormat(iotrace.FormatASCII))
	w, err := iotrace.New(iotrace.Source("ccm", src))
	if err != nil {
		log.Fatal(err)
	}
	if _, err := w.Characterize(); err != nil {
		log.Fatal(err)
	}
	for _, cacheMB := range []int64{4, 32} {
		cfg := iotrace.DefaultConfig()
		cfg.CacheBytes = cacheMB << 20
		if _, err := w.Simulate(cfg); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("3 consumers, %d decode\n", src.Decodes())
	// Output:
	// 3 consumers, 1 decode
}

// The importer quickstart from README.md, verbatim: bring a foreign
// trace — here a CSV site log — into the simulator without hand-
// converting it. The format is auto-detected and every record the
// importer synthesizes follows native conventions, so the imported
// stream behaves byte-identically to a hand-encoded native trace
// (pinned by TestImportCSVByteIdentical).
func Example_import() {
	dir, err := os.MkdirTemp("", "iotrace-import")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// A foreign site log: one timestamped file access per row.
	csv := "time,op,file,bytes\n" +
		"0.10,read,/data/in.dat,4096\n" +
		"0.35,write,/data/out.dat,8192\n" +
		"0.60,read,/data/in.dat,4096\n"
	path := filepath.Join(dir, "site-log.csv")
	if err := os.WriteFile(path, []byte(csv), 0o644); err != nil {
		log.Fatal(err)
	}

	// Import: the format is auto-detected (extension, then content),
	// and each row becomes a native logical record.
	format, err := iotrace.DetectFormat(path)
	if err != nil {
		log.Fatal(err)
	}
	recs, err := iotrace.ImportFile(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%v import: %d records\n", format, len(recs))

	// An imported trace drops into a workload like a native one.
	w, err := iotrace.New(iotrace.ImportedFile("site", path))
	if err != nil {
		log.Fatal(err)
	}
	res, err := w.Simulate(iotrace.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("disk reads %d, disk writes %d\n", res.Disk.Reads, res.Disk.Writes)
	// Output:
	// csv import: 5 records
	// disk reads 3, disk writes 1
}

// Contrast disk scheduling policies under contention. Write-through
// turns every write into a disk round trip, so four processes pile up
// in the volume's queue; Scheduling(policy) enables per-volume queueing
// and picks the dispatch order. The elevator halves seek time and wins;
// greedy shortest-seek-first thrashes between the interleaved files and
// loses even to arrival order.
func Example_scheduling() {
	w, err := iotrace.New(iotrace.App("ccm", 4))
	if err != nil {
		log.Fatal(err)
	}
	for _, name := range []string{"fcfs", "sstf", "scan"} {
		policy, err := iotrace.ParseScheduler(name)
		if err != nil {
			log.Fatal(err)
		}
		cfg := iotrace.Configure(iotrace.DefaultConfig(),
			iotrace.Scheduling(policy),
		)
		cfg.WriteBehind = false // every write queues at the disk
		res, err := w.Simulate(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-4s wall %.1f s, seek %.1f s, %.1f s queued\n",
			name, res.WallSeconds(), res.Volumes[0].SeekSec, res.VolumeQueues[0].WaitSec)
	}
	// Output:
	// fcfs wall 1599.1 s, seek 1174.6 s, 2827.3 s queued
	// sstf wall 1810.8 s, seek 1281.1 s, 3303.8 s queued
	// scan wall 1352.4 s, seek 675.1 s, 1789.0 s queued
}

// checkpointTrace hand-builds the trace of a cyclic checkpointing
// application: each cycle computes for computeSec, then dumps
// stateBytes of state in reqBytes-sized synchronous writes.
func checkpointTrace(pid uint32, cycles int, computeSec float64, stateBytes, reqBytes int64) []*iotrace.Record {
	var recs []*iotrace.Record
	var cpu iotrace.Ticks
	op := uint32(1)
	for c := 0; c < cycles; c++ {
		cpu += iotrace.TicksFromSeconds(computeSec)
		for off := int64(0); off < stateBytes; off += reqBytes {
			recs = append(recs, &iotrace.Record{
				Type:      iotrace.LogicalRecord | iotrace.WriteOp,
				ProcessID: pid, FileID: 1, OperationID: op,
				Offset: off, Length: reqBytes,
				Start: cpu, Completion: 1, ProcessTime: cpu,
			})
			op++
		}
	}
	return append(recs, iotrace.EndOfTrace(cpu, cpu))
}

// Four checkpointing applications share a 40 MB/s I/O backbone: two
// with 8 MB of state, two with 512 KB, all writing through to their
// volume. Uncoordinated FIFO lets the bursts convoy — small requests
// stall behind megabyte transfers. Fair sharing protects the small
// applications but stretches every colliding burst. Periodic windows
// matched to the common 1.6 s checkpoint cycle phase-lock each
// application into its own slot, and win on system efficiency.
func Example_congestion() {
	w := &iotrace.Workload{}
	w.AddTrace("big-a", checkpointTrace(1, 20, 1.27, 8<<20, 1<<20))
	w.AddTrace("big-b", checkpointTrace(2, 20, 1.27, 8<<20, 1<<20))
	w.AddTrace("small-a", checkpointTrace(3, 20, 1.53, 512<<10, 64<<10))
	w.AddTrace("small-b", checkpointTrace(4, 20, 1.53, 512<<10, 64<<10))

	for _, sched := range []iotrace.BackboneSchedPolicy{
		iotrace.BackboneFIFO, iotrace.BackboneFairShare, iotrace.BackbonePeriodic,
	} {
		cfg := iotrace.Configure(iotrace.DefaultConfig(),
			iotrace.Backbone(40, sched), // 40 MB/s shared link
		)
		cfg.NumCPUs = 4
		cfg.WriteBehind = false // checkpoints write through
		cfg.BackbonePeriodTicks = iotrace.TicksFromSeconds(1.6)
		res, err := w.Simulate(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8v system efficiency %.3f, wall %.1f s\n",
			sched, res.SystemEfficiency, res.WallSeconds())
	}
	// Output:
	// fifo     system efficiency 0.823, wall 34.1 s
	// fair     system efficiency 0.848, wall 34.8 s
	// periodic system efficiency 0.866, wall 32.8 s
}

// Inject a mid-checkpoint volume outage and compare how two storage
// configurations ride it out. Both applications write their checkpoints
// through to disk; the fault plan takes the volume down for 12 s while
// dumps are in flight. Under FCFS with no buffering every write is held
// at the dead volume until the 5 s retry timeout expires and the
// processes roll back to their last completed checkpoint, losing
// compute. SCAN plus a burst buffer absorbs the burst into the buffer
// tier and drains it after recovery — the outage never reaches the
// applications.
func Example_faults() {
	w := &iotrace.Workload{}
	w.AddTrace("ckpt-a", checkpointTrace(1, 20, 1.27, 8<<20, 1<<20))
	w.AddTrace("ckpt-b", checkpointTrace(2, 20, 1.53, 512<<10, 64<<10))

	plan, err := iotrace.ParseFaultPlan("vol0:down@10s+12s")
	if err != nil {
		log.Fatal(err)
	}
	for _, setup := range []struct {
		name string
		opts []iotrace.ConfigOption
	}{
		{"fcfs", []iotrace.ConfigOption{
			iotrace.Scheduling(iotrace.SchedFCFS)}},
		{"scan+burst", []iotrace.ConfigOption{
			iotrace.Scheduling(iotrace.SchedSCAN), iotrace.BurstBuffer(64, 80)}},
	} {
		cfg := iotrace.Configure(iotrace.DefaultConfig(),
			append(setup.opts, iotrace.Faults(plan))...)
		cfg.NumCPUs = 2
		cfg.WriteBehind = false // checkpoints write through
		cfg.RetryTimeoutTicks = iotrace.TicksFromSeconds(5)
		res, err := w.Simulate(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s wall %.1f s, availability %.3f, degraded %.1f s\n",
			setup.name, res.WallSeconds(), res.Availability, res.DegradedSec)
		for _, p := range res.Procs {
			fmt.Printf("  %-6s retried %d, restarts %d, lost %.1f s\n",
				p.Name, p.RetriedRequests, p.Restarts, p.LostTicks.Seconds())
		}
	}
	// Output:
	// fcfs       wall 42.5 s, availability 0.718, degraded 12.0 s
	//   ckpt-a retried 1, restarts 1, lost 1.3 s
	//   ckpt-b retried 1, restarts 1, lost 1.5 s
	// scan+burst wall 30.7 s, availability 0.609, degraded 12.0 s
	//   ckpt-a retried 32, restarts 0, lost 0.0 s
	//   ckpt-b retried 24, restarts 0, lost 0.0 s
}

// Shard the storage tier: 4 volumes, 64 KB striping. Result.Volumes
// breaks disk activity down per volume and VolumeImbalance summarizes
// how evenly the array carried it.
func ExampleConfigure() {
	w, err := iotrace.New(iotrace.App("ccm", 2))
	if err != nil {
		log.Fatal(err)
	}
	cfg := iotrace.Configure(iotrace.DefaultConfig(),
		iotrace.Volumes(4),
		iotrace.Striping(64<<10),
	)
	res, err := w.Simulate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d volumes, imbalance %.2f\n", len(res.Volumes), res.VolumeImbalance())
	for i, v := range res.Volumes {
		fmt.Printf("vol %d: %d writes, %.0f MB\n", i, v.Writes, float64(v.WriteBytes)/1e6)
	}
	// Output:
	// 4 volumes, imbalance 1.07
	// vol 0: 17230 writes, 432 MB
	// vol 1: 15776 writes, 406 MB
	// vol 2: 17407 writes, 437 MB
	// vol 3: 15972 writes, 432 MB
}
