package iotrace

import (
	"context"
	"io"
	"iter"
	"os"

	"iotrace/internal/analysis"
	"iotrace/internal/trace"
)

// streamChunkRecords is the arena granularity of ReadRecords: yielded
// records are decoded straight into chunk-allocated slots, so consumers
// may retain them while the stream costs one allocation per chunk rather
// than one per record.
const streamChunkRecords = 512

// ReadRecords returns a streaming iterator over the records of an encoded
// trace. Records are decoded one at a time as the caller ranges; an
// encoding error is yielded once as the final pair and the stream stops.
// The iterator is single-use: it consumes r.
//
// Yielded records are independently retainable (each occupies its own
// slot in a chunk arena), so callers may hold on to any subset without
// copying; chunks are reclaimed once no record in them is referenced.
func ReadRecords(r io.Reader, format Format) iter.Seq2[*Record, error] {
	return decodeRecords(r, format, trace.DecodeOptions{})
}

// decodeRecords is ReadRecords for any registered decoder: the same
// chunk-arena streaming loop over the format-agnostic Decoder contract,
// with importer options threaded through. FormatAuto is rejected here —
// resolve it first (DetectFormat needs the file's name and prefix).
func decodeRecords(r io.Reader, format Format, opts trace.DecodeOptions) iter.Seq2[*Record, error] {
	return func(yield func(*Record, error) bool) {
		dec, err := trace.NewDecoder(r, format, opts)
		if err != nil {
			yield(nil, err)
			return
		}
		var chunk []Record
		for {
			if len(chunk) == cap(chunk) {
				chunk = make([]Record, 0, streamChunkRecords)
			}
			chunk = chunk[:len(chunk)+1]
			rec := &chunk[len(chunk)-1]
			err := dec.Next(rec)
			if err == io.EOF {
				return
			}
			if err != nil {
				yield(nil, err)
				return
			}
			if !yield(rec, nil) {
				return
			}
		}
	}
}

// ReadTraceFile returns a streaming iterator over the records of a trace
// file. The file is opened when the caller starts ranging and closed when
// ranging stops, so the iterator is re-iterable: every range replays the
// file from the start. That makes it suitable for TraceStream processes
// that are both characterized and simulated, and for sweeps that replay
// one stream under many configurations.
func ReadTraceFile(path string, format Format) iter.Seq2[*Record, error] {
	return func(yield func(*Record, error) bool) {
		f, err := os.Open(path)
		if err != nil {
			yield(nil, err)
			return
		}
		defer f.Close()
		for rec, err := range ReadRecords(f, format) {
			if !yield(rec, err) {
				return
			}
			if err != nil {
				return
			}
		}
	}
}

// WriteRecords encodes a record stream to w in the given format and
// flushes. It returns the number of records written. A yielded stream
// error or an encoding error stops the write.
func WriteRecords(w io.Writer, format Format, recs iter.Seq2[*Record, error]) (int64, error) {
	tw := trace.NewWriter(w, format)
	for rec, err := range recs {
		if err != nil {
			return tw.Records(), err
		}
		if err := tw.WriteRecord(rec); err != nil {
			return tw.Records(), err
		}
	}
	return tw.Records(), tw.Flush()
}

// WriteTraceFile streams records into a newly created trace file.
func WriteTraceFile(path string, format Format, recs iter.Seq2[*Record, error]) (int64, error) {
	f, err := os.Create(path)
	if err != nil {
		return 0, err
	}
	n, err := WriteRecords(f, format, recs)
	if err != nil {
		f.Close()
		return n, err
	}
	return n, f.Close()
}

// RecordSeq adapts a materialized record slice to the streaming iterator
// form. The result is re-iterable.
func RecordSeq(recs []*Record) iter.Seq2[*Record, error] {
	return func(yield func(*Record, error) bool) {
		for _, r := range recs {
			if !yield(r, nil) {
				return
			}
		}
	}
}

// Materialize collects a record stream into a slice, stopping at the
// first yielded error.
func Materialize(recs iter.Seq2[*Record, error]) ([]*Record, error) {
	var out []*Record
	for r, err := range recs {
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// WithContext threads cancellation through a record stream: once ctx is
// cancelled, the stream yields ctx's error and stops. Long loads,
// characterizations, and simulations driven by the returned stream
// therefore stop promptly when the caller gives up.
func WithContext(ctx context.Context, recs iter.Seq2[*Record, error]) iter.Seq2[*Record, error] {
	return func(yield func(*Record, error) bool) {
		for rec, err := range recs {
			if cerr := ctx.Err(); cerr != nil && err == nil {
				yield(nil, cerr)
				return
			}
			if !yield(rec, err) {
				return
			}
			if err != nil {
				return
			}
		}
	}
}

// CharacterizeSeq computes §5 trace statistics from a record stream in
// one pass, without materializing the trace.
func CharacterizeSeq(name string, recs iter.Seq2[*Record, error]) (*Stats, error) {
	a := analysis.NewAccumulator(name)
	for rec, err := range recs {
		if err != nil {
			return nil, err
		}
		a.Add(rec)
	}
	return a.Finish(), nil
}

// SaveTrace writes a materialized trace to w in the named format
// ("ascii", "binary", "ascii-raw").
func SaveTrace(w io.Writer, format string, recs []*Record) error {
	f, err := ParseFormat(format)
	if err != nil {
		return err
	}
	_, err = WriteRecords(w, f, RecordSeq(recs))
	return err
}

// LoadTrace reads a whole trace from r in the named format.
func LoadTrace(r io.Reader, format string) ([]*Record, error) {
	f, err := ParseFormat(format)
	if err != nil {
		return nil, err
	}
	return Materialize(ReadRecords(r, f))
}

// SaveTraceFile writes a materialized trace to path.
func SaveTraceFile(path, format string, recs []*Record) error {
	f, err := ParseFormat(format)
	if err != nil {
		return err
	}
	_, err = WriteTraceFile(path, f, RecordSeq(recs))
	return err
}

// LoadTraceFile reads a whole trace from path.
func LoadTraceFile(path, format string) ([]*Record, error) {
	f, err := ParseFormat(format)
	if err != nil {
		return nil, err
	}
	return Materialize(ReadTraceFile(path, f))
}
